package pmedic

// One benchmark per table/figure of the paper's evaluation: each bench
// regenerates the data series behind its figure (workload + sweep + metric
// extraction) once per iteration and sanity-checks the reproduced shape.
// `go test -bench=. -benchmem` therefore doubles as the reproduction run;
// cmd/pmsim pretty-prints the same series.

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/eval"
	"pmedic/internal/flow"
	"pmedic/internal/lp"
	"pmedic/internal/opt"
	"pmedic/internal/planstore"
	"pmedic/internal/region"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// heuristicAlgorithms are the three fast comparators (Optimal has its own
// benches — it is orders of magnitude slower by design).
func heuristicAlgorithms() []eval.Algorithm {
	return []eval.Algorithm{
		{Name: "PM", Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return core.PM(inst.Problem)
		}},
		{Name: "RetroFlow", Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return core.RetroFlow(inst.Problem)
		}},
		{Name: "PG", Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return core.PG(inst.Problem)
		}},
	}
}

// benchFixtures builds the shared inputs of a figure bench: the deployment,
// the workload, and one scenario context reused across every sweep — the
// production configuration (cmd/pmsim shares a context the same way). The
// callers ResetTimer after fixtures, so benches time the sweep engine.
func benchFixtures(b *testing.B) (*topo.Deployment, *flow.Set, *scenario.Context) {
	b.Helper()
	dep, err := topo.ATT()
	if err != nil {
		b.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		b.Fatal(err)
	}
	return dep, flows, ctx
}

func sweep(b *testing.B, dep *topo.Deployment, flows *flow.Set, ctx *scenario.Context, k int) []*eval.CaseResult {
	b.Helper()
	cases, err := eval.SweepOpts(dep, flows, k, heuristicAlgorithms(), eval.Options{Context: ctx})
	if err != nil {
		b.Fatal(err)
	}
	return cases
}

// BenchmarkTableIII regenerates the controller/switch/flow-count table: the
// embedded topology plus the all-pairs shortest-path workload with
// programmability coefficients.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dep, err := topo.ATT()
		if err != nil {
			b.Fatal(err)
		}
		flows, err := flow.Generate(dep.Graph, flow.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if flows.Len() != 600 {
			b.Fatalf("flows = %d", flows.Len())
		}
		for _, c := range dep.Controllers {
			load := 0
			for _, sw := range c.Domain {
				load += flows.SwitchFlowCount(sw)
			}
			if load >= c.Capacity {
				b.Fatalf("controller at %d overloaded pre-failure", c.Site)
			}
		}
	}
}

// --- Fig. 4: one controller failure (6 cases) ---

// BenchmarkFig4Programmability regenerates Fig. 4(a): per-flow
// programmability box statistics. Under one failure every algorithm matches.
func BenchmarkFig4Programmability(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 1) {
			pm, _ := c.ProgBox("PM")
			rf, _ := c.ProgBox("RetroFlow")
			if pm.Median != rf.Median || pm.Min != rf.Min {
				b.Fatalf("case %s: single-failure box stats diverge (PM %+v, RetroFlow %+v)", c.Label, pm, rf)
			}
		}
	}
}

// BenchmarkFig4TotalProgrammability regenerates Fig. 4(b): totals normalized
// to RetroFlow are 100% in every single-failure case.
func BenchmarkFig4TotalProgrammability(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 1) {
			if pct, ok := c.TotalProgPctOf("PM", "RetroFlow"); !ok || pct < 99.99 {
				b.Fatalf("case %s: PM = %.1f%% of RetroFlow, want 100%%", c.Label, pct)
			}
		}
	}
}

// BenchmarkFig4RecoveredFlows regenerates Fig. 4(c): 100% recovery for every
// algorithm under a single failure.
func BenchmarkFig4RecoveredFlows(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 1) {
			for _, name := range []string{"PM", "RetroFlow", "PG"} {
				if pct, ok := c.RecoveredFlowPct(name); !ok || pct < 99.99 {
					b.Fatalf("case %s: %s recovered %.1f%%", c.Label, name, pct)
				}
			}
		}
	}
}

// BenchmarkFig4Overhead regenerates Fig. 4(d): per-flow communication
// overhead; PG (middle layer) must be the worst.
func BenchmarkFig4Overhead(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 1) {
			pm, _ := c.PerFlowOverheadMs("PM")
			pg, _ := c.PerFlowOverheadMs("PG")
			if pg <= pm {
				b.Fatalf("case %s: PG overhead %.2f <= PM %.2f", c.Label, pg, pm)
			}
		}
	}
}

// --- Fig. 5: two controller failures (15 cases) ---

// BenchmarkFig5Programmability regenerates Fig. 5(a): PM keeps a balanced
// floor (min 2) while RetroFlow's min collapses to 0 in every case.
func BenchmarkFig5Programmability(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 2) {
			pm, _ := c.ProgBox("PM")
			rf, _ := c.ProgBox("RetroFlow")
			if pm.Min < 2 {
				b.Fatalf("case %s: PM min %.0f < 2", c.Label, pm.Min)
			}
			if rf.Min != 0 {
				b.Fatalf("case %s: RetroFlow min %.0f != 0", c.Label, rf.Min)
			}
		}
	}
}

// BenchmarkFig5TotalProgrammability regenerates Fig. 5(b): PM strictly
// beats RetroFlow everywhere, and the largest gap occurs in a case where
// the spare-capacity backup controller (site 16) is among the failed — the
// structural analog of the paper's headline case (13, 20).
func BenchmarkFig5TotalProgrammability(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worst := 0.0
		var worstCase *eval.CaseResult
		for _, c := range sweep(b, dep, flows, ctx, 2) {
			pct, ok := c.TotalProgPctOf("PM", "RetroFlow")
			if !ok || pct <= 100 {
				b.Fatalf("case %s: PM = %.1f%% of RetroFlow", c.Label, pct)
			}
			if pct > worst {
				worst, worstCase = pct, c
			}
		}
		if worst < 150 {
			b.Fatalf("largest gap only %.0f%% at %s; the backup-failure spike is missing", worst, worstCase.Label)
		}
		if !failsSite(dep, worstCase, 16) {
			b.Fatalf("largest gap at %s (%.0f%%), want a case that kills the backup controller (site 16)",
				worstCase.Label, worst)
		}
	}
}

// failsSite reports whether the case's failed set includes the controller
// hosted at the given site, by inspecting the failed controller indices
// rather than scanning the display label for a digit substring (which would
// also match e.g. site 6 next to a 1, or a site "160").
func failsSite(dep *topo.Deployment, c *eval.CaseResult, site topo.NodeID) bool {
	for _, j := range c.Failed {
		if j >= 0 && j < len(dep.Controllers) && dep.Controllers[j].Site == site {
			return true
		}
	}
	return false
}

// BenchmarkFig5RecoveredFlows regenerates Fig. 5(c): PM and PG recover 100%,
// RetroFlow a strict subset.
func BenchmarkFig5RecoveredFlows(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 2) {
			pm, _ := c.RecoveredFlowPct("PM")
			rf, _ := c.RecoveredFlowPct("RetroFlow")
			if pm < 99.99 || rf >= pm {
				b.Fatalf("case %s: PM %.0f%%, RetroFlow %.0f%%", c.Label, pm, rf)
			}
		}
	}
}

// BenchmarkFig5RecoveredSwitches regenerates Fig. 5(d): recovered offline
// switches per algorithm.
func BenchmarkFig5RecoveredSwitches(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 2) {
			pm, _ := c.RecoveredSwitchPct("PM")
			rf, _ := c.RecoveredSwitchPct("RetroFlow")
			if pm < rf {
				b.Fatalf("case %s: PM switches %.0f%% < RetroFlow %.0f%%", c.Label, pm, rf)
			}
		}
	}
}

// BenchmarkFig5ControllerLoad regenerates Fig. 5(e): control resource used
// per active controller.
func BenchmarkFig5ControllerLoad(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 2) {
			loads, ok := c.ControllerLoadPct("PM")
			if !ok {
				b.Fatalf("case %s: no PM loads", c.Label)
			}
			for jj, pct := range loads {
				if pct > 100.0001 {
					b.Fatalf("case %s: controller %d at %.1f%%", c.Label, jj, pct)
				}
			}
		}
	}
}

// BenchmarkFig5Overhead regenerates Fig. 5(f): per-flow communication
// overhead ordering PM < RetroFlow-or-PG, PG worst.
func BenchmarkFig5Overhead(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 2) {
			pm, _ := c.PerFlowOverheadMs("PM")
			pg, _ := c.PerFlowOverheadMs("PG")
			if pg <= pm {
				b.Fatalf("case %s: PG %.2f <= PM %.2f", c.Label, pg, pm)
			}
		}
	}
}

// --- Fig. 6: three controller failures (20 cases) ---

// BenchmarkFig6Programmability regenerates Fig. 6(a).
func BenchmarkFig6Programmability(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 3) {
			pm, _ := c.ProgBox("PM")
			rf, _ := c.ProgBox("RetroFlow")
			if pm.Median < rf.Median {
				b.Fatalf("case %s: PM median %.1f < RetroFlow %.1f", c.Label, pm.Median, rf.Median)
			}
		}
	}
}

// BenchmarkFig6TotalProgrammability regenerates Fig. 6(b).
func BenchmarkFig6TotalProgrammability(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 3) {
			if pct, ok := c.TotalProgPctOf("PM", "RetroFlow"); !ok || pct <= 100 {
				b.Fatalf("case %s: PM = %.1f%% of RetroFlow", c.Label, pct)
			}
		}
	}
}

// BenchmarkFig6RecoveredFlows regenerates Fig. 6(c): under three failures
// capacity is scarce, so PM recovers 100% only in a subset of cases — and in
// the tight cases it still matches the flow-level PG.
func BenchmarkFig6RecoveredFlows(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, tight := 0, 0
		for _, c := range sweep(b, dep, flows, ctx, 3) {
			pm, _ := c.RecoveredFlowPct("PM")
			pg, _ := c.RecoveredFlowPct("PG")
			if pm >= 99.99 {
				full++
			} else {
				tight++
				if pg-pm > 1.0 {
					b.Fatalf("case %s: PM %.0f%% far below PG %.0f%%", c.Label, pm, pg)
				}
			}
		}
		if full == 0 || tight == 0 {
			b.Fatalf("expected a mix of full and tight cases, got %d/%d", full, tight)
		}
	}
}

// BenchmarkFig6RecoveredSwitches regenerates Fig. 6(d).
func BenchmarkFig6RecoveredSwitches(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 3) {
			pm, _ := c.RecoveredSwitchPct("PM")
			rf, _ := c.RecoveredSwitchPct("RetroFlow")
			if pm < rf {
				b.Fatalf("case %s: PM %.0f%% < RetroFlow %.0f%%", c.Label, pm, rf)
			}
		}
	}
}

// BenchmarkFig6ControllerLoad regenerates Fig. 6(e): in tight cases PM
// saturates the surviving controllers.
func BenchmarkFig6ControllerLoad(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 3) {
			if _, ok := c.ControllerLoadPct("PM"); !ok {
				b.Fatalf("case %s: missing loads", c.Label)
			}
		}
	}
}

// BenchmarkFig6Overhead regenerates Fig. 6(f).
func BenchmarkFig6Overhead(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range sweep(b, dep, flows, ctx, 3) {
			pm, _ := c.PerFlowOverheadMs("PM")
			pg, _ := c.PerFlowOverheadMs("PG")
			if pg <= pm {
				b.Fatalf("case %s: PG %.2f <= PM %.2f", c.Label, pg, pm)
			}
		}
	}
}

// --- Fig. 7: computation time, PM vs Optimal ---

// BenchmarkFig7ComputationTime regenerates the Fig. 7 comparison on one
// representative case per scenario size with a bounded exact solve. The
// budget is a fixed node count, not wall clock: a time-limited solve always
// costs its own limit, so ns/op would measure the budget rather than the
// solver, and no optimization could ever show up. With the node budget the
// work is deterministic (same tree, same incumbents on every run) and ns/op
// tracks branch-&-bound throughput. PM must be orders of magnitude faster
// (the paper reports ~2% of Optimal's time).
func BenchmarkFig7ComputationTime(b *testing.B) {
	_, _, ctx := benchFixtures(b)
	cases := [][]int{{4}, {3, 4}, {2, 3, 4}}
	const nodeBudget = 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, failed := range cases {
			inst, err := ctx.Build(failed)
			if err != nil {
				b.Fatal(err)
			}
			warm, err := core.PM(inst.Problem)
			if err != nil {
				b.Fatal(err)
			}
			sol, err := opt.Solve(inst.Problem, opt.Options{
				TimeLimit: time.Hour, // the node budget is the binding limit
				MaxNodes:  nodeBudget,
				Warm:      warm,
			})
			if err != nil {
				continue // no incumbent within the node budget: still informative
			}
			if warm.Runtime >= sol.Runtime {
				b.Fatalf("case %v: PM (%v) not faster than Optimal (%v)", failed, warm.Runtime, sol.Runtime)
			}
		}
	}
}

// --- individual algorithm microbenches (the Fig. 7 ingredients) ---

func benchAlgorithm(b *testing.B, run func(*core.Problem) (*core.Solution, error)) {
	b.Helper()
	_, _, ctx := benchFixtures(b)
	inst, err := ctx.Build([]int{3, 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(inst.Problem); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithmPM times one PM solve of the headline case.
func BenchmarkAlgorithmPM(b *testing.B) { benchAlgorithm(b, core.PM) }

// BenchmarkAlgorithmRetroFlow times one RetroFlow solve of the headline case.
func BenchmarkAlgorithmRetroFlow(b *testing.B) { benchAlgorithm(b, core.RetroFlow) }

// BenchmarkAlgorithmPG times one PG solve of the headline case.
func BenchmarkAlgorithmPG(b *testing.B) { benchAlgorithm(b, core.PG) }

// --- ablations (design knobs called out in DESIGN.md) ---

// BenchmarkAblationSlack sweeps the path-counting hop slack: looser bounds
// inflate p̄ and slow counting.
func BenchmarkAblationSlack(b *testing.B) {
	dep, err := topo.ATT()
	if err != nil {
		b.Fatal(err)
	}
	for _, slack := range []int{1, 2} {
		b.Run(fmt.Sprintf("slack=%d", slack), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := flow.Generate(dep.Graph, flow.Options{Slack: slack}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPathCap sweeps the per-pair path-count cap, which bounds
// the p̄ distribution's spread (and with it the inter-algorithm gaps).
func BenchmarkAblationPathCap(b *testing.B) {
	dep, err := topo.ATT()
	if err != nil {
		b.Fatal(err)
	}
	for _, cap := range []int{4, 12, 48} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			flows, err := flow.Generate(dep.Graph, flow.Options{Limit: cap})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst, err := scenario.Build(dep, flows, []int{3, 4})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.PM(inst.Problem); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPMIterations compares PM's balancing depth: a single
// sweep versus the paper's TOTAL_ITERATIONS sweeps.
func BenchmarkAblationPMIterations(b *testing.B) {
	_, _, ctx := benchFixtures(b)
	for _, iters := range []int{1, 0} { // 0 = paper default
		name := "default"
		if iters == 1 {
			name = "single-sweep"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst, err := ctx.Build([]int{3, 4})
				if err != nil {
					b.Fatal(err)
				}
				if iters > 0 {
					inst.Problem.TotalIterations = iters
				}
				if _, err := core.PM(inst.Problem); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadGeneration times the Table III ingredient in isolation.
func BenchmarkWorkloadGeneration(b *testing.B) {
	dep, err := topo.ATT()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Generate(dep.Graph, flow.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioBuild times cold failure-case compilation: context
// precomputation plus case assembly, as a one-shot caller would pay it.
func BenchmarkScenarioBuild(b *testing.B) {
	dep, flows, _ := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Build(dep, flows, []int{3, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioContextBuild times warm failure-case compilation from a
// shared context — the per-case cost a sweep actually pays.
func BenchmarkScenarioContextBuild(b *testing.B) {
	_, _, ctx := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Build([]int{3, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- solver scale benches: the sparse-simplex payoff beyond ATT ---

// scaleProblem compiles a single-controller-failure instance on the
// deterministic 100-node synthetic deployment: ~1 650 constraint rows and
// ~2 500 binaries — the scale where the dense explicit inverse's O(m³)
// refactorization is visibly superlinear and the eta file is not.
func scaleProblem(b *testing.B) *core.Problem {
	b.Helper()
	dep, err := topo.Synthetic(100, 8, 12000)
	if err != nil {
		b.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		b.Fatal(err)
	}
	inst, err := scenario.Build(dep, flows, []int{0})
	if err != nil {
		b.Fatal(err)
	}
	return inst.Problem
}

func benchOptScale(b *testing.B, f lp.Factorization) {
	p := scaleProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := opt.SensitivitiesWith(p, lp.Options{Factorization: f})
		if err != nil {
			b.Fatal(err)
		}
		if s.Objective <= 0 {
			b.Fatalf("degenerate relaxation objective %v", s.Objective)
		}
	}
}

// millionFlowFixture is the carrier-scale input: a 1000-node synthetic
// deployment with ~10⁶ all-pairs flows (999 000 exactly). Generation takes
// ~30 s, so it is built once and shared; every benchmark iteration still
// compiles its failure case and solves from scratch.
var millionFlow struct {
	once  sync.Once
	dep   *topo.Deployment
	flows *flow.Set
	ctx   *scenario.Context
	err   error
}

func millionFlowFixture(b *testing.B) (*topo.Deployment, *flow.Set, *scenario.Context) {
	b.Helper()
	millionFlow.once.Do(func() {
		// Capacity clears the largest pre-failure domain load (~2.49 M flow
		// traversals at n=1000, m=10) with headroom for recovery.
		dep, err := topo.Synthetic(1000, 10, 2_600_000)
		if err != nil {
			millionFlow.err = err
			return
		}
		flows, err := flow.Generate(dep.Graph, flow.Options{})
		if err != nil {
			millionFlow.err = err
			return
		}
		ctx, err := scenario.NewContext(dep, flows)
		if err != nil {
			millionFlow.err = err
			return
		}
		millionFlow.dep, millionFlow.flows, millionFlow.ctx = dep, flows, ctx
	})
	if millionFlow.err != nil {
		b.Fatal(millionFlow.err)
	}
	return millionFlow.dep, millionFlow.flows, millionFlow.ctx
}

// BenchmarkMillionFlow times one depth-1 sweep case end to end at million-flow
// scale: failure-case compilation from the shared context plus a PM solve.
// This is the tentpole's headline path — the case compiles through the
// switch→flows CSR index (touching only flows that cross the failed domain)
// and PM plans over weighted equivalence classes instead of individual flows,
// which is what keeps the case in the hundreds of milliseconds instead of
// minutes.
func BenchmarkMillionFlow(b *testing.B) {
	_, flows, ctx := millionFlowFixture(b)
	if flows.Len() != 999_000 {
		b.Fatalf("flows = %d, want 999000", flows.Len())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := ctx.Build([]int{0})
		if err != nil {
			b.Fatal(err)
		}
		sol, err := core.PM(inst.Problem)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := inst.Evaluate(sol)
		if err != nil {
			b.Fatal(err)
		}
		if rep.RecoveredFlows == 0 {
			b.Fatal("no flows recovered at scale")
		}
		if i == 0 {
			classes := inst.Problem.ClassCount()
			if classes <= 0 {
				b.Fatalf("instance not class-aggregable (classes=%d)", classes)
			}
			b.ReportMetric(float64(inst.Problem.NumFlows), "offline-flows")
			b.ReportMetric(float64(classes), "classes")
			b.ReportMetric(float64(inst.Problem.NumFlows)/float64(classes), "flows/class")
		}
	}
}

// --- hierarchical region-sharded planning (DESIGN.md §15) ---

// hierWAN is the carrier-scale clustered fixture: 1000 switches, 50
// controllers, 8 natural clusters, all-pairs traffic (999 000 flows),
// capacity sized at 1.5x the heaviest pre-failure domain load. Workload
// generation takes ~30 s, so the fixture is built once and shared.
var hierWAN struct {
	once  sync.Once
	dep   *topo.Deployment
	flows *flow.Set
	ctx   *scenario.Context
	part  *region.Partition
	err   error
}

func hierWANFixture(b *testing.B) (*topo.Deployment, *flow.Set, *scenario.Context, *region.Partition) {
	b.Helper()
	hierWAN.once.Do(func() {
		const (
			n, m, k = 1000, 50, 8
			seed    = 1
		)
		opts := topo.SyntheticOpts{Seed: seed, Regions: k}
		dep, err := topo.SyntheticWithOpts(n, m, 1, opts)
		if err != nil {
			hierWAN.err = err
			return
		}
		flows, err := flow.Generate(dep.Graph, flow.Options{})
		if err != nil {
			hierWAN.err = err
			return
		}
		maxLoad := 0
		for _, c := range dep.Controllers {
			load := 0
			for _, sw := range c.Domain {
				load += flows.SwitchFlowCount(sw)
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		if dep, err = topo.SyntheticWithOpts(n, m, maxLoad+maxLoad/2+1, opts); err != nil {
			hierWAN.err = err
			return
		}
		ctx, err := scenario.NewContext(dep, flows)
		if err != nil {
			hierWAN.err = err
			return
		}
		part, err := region.New(dep, k, seed)
		if err != nil {
			hierWAN.err = err
			return
		}
		hierWAN.dep, hierWAN.flows, hierWAN.ctx, hierWAN.part = dep, flows, ctx, part
	})
	if hierWAN.err != nil {
		b.Fatal(hierWAN.err)
	}
	return hierWAN.dep, hierWAN.flows, hierWAN.ctx, hierWAN.part
}

// BenchmarkHierarchical1000 is the tentpole headline: a full depth-1 sweep
// (50 failure cases) of the 1000-node / 50-controller clustered WAN, solving
// every case with flat PM and with the hierarchical region-sharded PM on the
// same instance. The whole sweep — case compilation included — lands in
// seconds, and the per-case mean solve times of both algorithms go into the
// JSON as case-flat-ms / case-hier-ms: the documented comparison against the
// flat-PM baseline at the largest size flat can still finish. Flat runs
// first, so the per-case flow-class index (built once and shared by both
// solvers) is charged to the baseline exactly as a standalone flat sweep
// would pay it; the hierarchical times are planning proper — region slices,
// class-index derivation per slice, border coordination, and two improver
// rounds. On a single-core host the hierarchical solve costs a small constant
// factor over flat (its region solves serialize); its worker-pool parallelism
// across touched regions is asserted byte-identical by the region tests.
func BenchmarkHierarchical1000(b *testing.B) {
	dep, flows, ctx, part := hierWANFixture(b)
	algs := []eval.Algorithm{
		{Name: "PM", Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return core.PM(inst.Problem)
		}},
		eval.HierPM(part, region.SolveOptions{ImproveRounds: 2}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cases, err := eval.SweepOpts(dep, flows, 1, algs, eval.Options{Context: ctx})
		if err != nil {
			b.Fatal(err)
		}
		if len(cases) != len(dep.Controllers) {
			b.Fatalf("swept %d cases, want %d", len(cases), len(dep.Controllers))
		}
		for _, c := range cases {
			for _, name := range []string{"PM", "PM-H"} {
				rep := c.Report(name)
				if rep == nil {
					b.Fatalf("case %s: no %s result", c.Label, name)
				}
				if rep.RecoveredFlows == 0 {
					b.Fatalf("case %s: %s recovered no flows", c.Label, name)
				}
			}
		}
		if i == 0 {
			flatMean, _ := eval.MeanRuntime(cases, "PM")
			hierMean, _ := eval.MeanRuntime(cases, "PM-H")
			b.ReportMetric(float64(flatMean.Microseconds())/1000, "case-flat-ms")
			b.ReportMetric(float64(hierMean.Microseconds())/1000, "case-hier-ms")
			b.ReportMetric(float64(len(part.Border)), "border-switches")
		}
	}
}

// BenchmarkRegionPartition times the deterministic partitioner on the
// 1000-node WAN. A single partition is around a millisecond — inside timer
// noise on a contended host at the suite's -benchtime — so ns/op is
// overridden with the fastest of 8 builds per iteration, the same robust-min
// pattern the plan-store benches use.
func BenchmarkRegionPartition(b *testing.B) {
	dep, _, _, _ := hierWANFixture(b)
	minNs := math.MaxFloat64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 8; r++ {
			t0 := time.Now()
			part, err := region.New(dep, 8, 1)
			if err != nil {
				b.Fatal(err)
			}
			if d := float64(time.Since(t0).Nanoseconds()); d < minNs {
				minNs = d
			}
			if len(part.Border) == 0 {
				b.Fatal("degenerate partition: no border")
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(minNs, "ns/op")
}

// BenchmarkOptScaleSparse times the compact model's LP relaxation on the
// 100-node instance with the product-form eta file.
func BenchmarkOptScaleSparse(b *testing.B) { benchOptScale(b, lp.FactorSparse) }

// BenchmarkOptScaleDense times the same relaxation with the dense explicit
// inverse the solver used before the sparse rewrite; the gap between this
// bench and BenchmarkOptScaleSparse is the tentpole's headline number.
func BenchmarkOptScaleDense(b *testing.B) { benchOptScale(b, lp.FactorDense) }

// --- extension benches (beyond the paper; see EXPERIMENTS.md) ---

// BenchmarkExtensionCascade measures a cascading-failure episode per
// algorithm granularity and asserts the robustness ordering: at the same
// trigger, switch-level recovery never outlives per-flow recovery.
func BenchmarkExtensionCascade(b *testing.B) {
	dep, flows, _ := benchFixtures(b)
	algs := heuristicAlgorithms()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pmRes, err := eval.Cascade(dep, flows, []int{3}, algs[0], 0.95)
		if err != nil {
			b.Fatal(err)
		}
		rfRes, err := eval.Cascade(dep, flows, []int{3}, algs[1], 0.95)
		if err != nil {
			b.Fatal(err)
		}
		if pmRes.Collapsed && !rfRes.Collapsed {
			b.Fatal("PM cascaded further than RetroFlow at the same trigger")
		}
	}
}

// BenchmarkExtensionSuccessiveChurn measures recovery churn across a
// two-step successive failure.
func BenchmarkExtensionSuccessiveChurn(b *testing.B) {
	dep, flows, _ := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steps, err := scenario.BuildSuccessive(dep, flows, []int{3, 4})
		if err != nil {
			b.Fatal(err)
		}
		prev, err := core.PM(steps[0].Instance.Problem)
		if err != nil {
			b.Fatal(err)
		}
		next, err := core.PM(steps[1].Instance.Problem)
		if err != nil {
			b.Fatal(err)
		}
		churn := eval.Churn(steps[0].Instance, prev, steps[1].Instance, next)
		if churn.CommonSwitches == 0 {
			b.Fatal("no common switches across successive steps")
		}
	}
}

// BenchmarkPlanStoreLookup measures the plan store's failure-path cost — an
// Exact binary search plus zero-allocation delta decode into a reused shell —
// and reports the speedup over solving the same case fresh with core.PM as
// solve-speedup-x (the acceptance floor is 100×). A single lookup is around
// a hundred nanoseconds, far below timer noise at the suite's -benchtime 1x,
// so the loop runs batches of 32768 lookups and overrides ns/op with the
// robust per-lookup minimum (see the chunk comment below) — the figure the
// perf gate compares across baselines.
func BenchmarkPlanStoreLookup(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	path := filepath.Join(b.TempDir(), "att.pmps")
	if _, err := planstore.Compile(dep, flows, path, planstore.CompileOptions{Depth: 2, Context: ctx}); err != nil {
		b.Fatal(err)
	}
	st, err := planstore.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	inst, err := ctx.Build([]int{3, 4})
	if err != nil {
		b.Fatal(err)
	}

	// Warm both paths (and the CPU's frequency governor) before pricing
	// either: a cold run understates the solve and overstates the lookup.
	const lookupsPerOp = 32768
	sol := core.NewSolution("PM", inst.Problem)
	for l := 0; l < lookupsPerOp; l++ {
		rec, ok := st.Exact(inst.Failed)
		if !ok {
			b.Fatal("compiled case {3,4} absent from the store")
		}
		if err := st.DecodeInto(rec, inst, sol); err != nil {
			b.Fatal(err)
		}
	}

	// Price the path the store replaces: a fresh PM solve of the same case.
	// Both sides are measured as minima over repeated slices — preemption on
	// a busy host only ever adds time, so the minimum is the robust estimate
	// of the true cost at the suite's tiny -benchtime.
	const solveRounds = 20
	solveNs := math.MaxFloat64
	for i := 0; i < solveRounds; i++ {
		t0 := time.Now()
		if _, err := core.PM(inst.Problem); err != nil {
			b.Fatal(err)
		}
		if d := float64(time.Since(t0).Nanoseconds()); d < solveNs {
			solveNs = d
		}
	}

	// 256 chunks of 128 lookups per op: each chunk is tens of microseconds,
	// short enough that most chunks land inside a clean scheduling window
	// even on a contended host, so the min converges fast.
	const chunk = 128
	minChunkNs := math.MaxFloat64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for base := 0; base < lookupsPerOp; base += chunk {
			t0 := time.Now()
			for l := 0; l < chunk; l++ {
				rec, ok := st.Exact(inst.Failed)
				if !ok {
					b.Fatal("compiled case {3,4} absent from the store")
				}
				if err := st.DecodeInto(rec, inst, sol); err != nil {
					b.Fatal(err)
				}
			}
			if d := float64(time.Since(t0).Nanoseconds()); d < minChunkNs {
				minChunkNs = d
			}
		}
	}
	b.StopTimer()
	if perLookup := minChunkNs / chunk; perLookup > 0 {
		b.ReportMetric(perLookup, "ns/op")
		b.ReportMetric(solveNs/perLookup, "solve-speedup-x")
	}
}

// sweepDeltaFixture compiles the delta-sweep bench input once: a 100-node /
// 8-controller synthetic WAN (~9 900 all-pairs flows) whose depth-3 failure
// enumeration (56 cases) is deep enough that Gray-adjacent cases share two
// of their three failed domains.
var sweepDeltaOnce struct {
	sync.Once
	ctx    *scenario.Context
	combos [][]int
	err    error
}

func sweepDeltaFixture(b *testing.B) (*scenario.Context, [][]int) {
	b.Helper()
	sweepDeltaOnce.Do(func() {
		dep, err := topo.Synthetic(100, 8, 12000)
		if err != nil {
			sweepDeltaOnce.err = err
			return
		}
		flows, err := flow.Generate(dep.Graph, flow.Options{})
		if err != nil {
			sweepDeltaOnce.err = err
			return
		}
		ctx, err := scenario.NewContext(dep, flows)
		if err != nil {
			sweepDeltaOnce.err = err
			return
		}
		sweepDeltaOnce.ctx = ctx
		sweepDeltaOnce.combos = scenario.Combinations(len(dep.Controllers), 3)
	})
	if sweepDeltaOnce.err != nil {
		b.Fatal(sweepDeltaOnce.err)
	}
	return sweepDeltaOnce.ctx, sweepDeltaOnce.combos
}

// BenchmarkSweepDelta prices case compilation through the two sweep engines
// on the same depth-3 enumeration: ns/op is the delta engine's full-sweep
// time (min over iterations, robust to host contention), scratch-ns the
// reference engine measured in the same iterations, and delta-speedup-x
// their ratio. fn is a trivial consistency check so the numbers isolate
// compilation: with real solves the delta win narrows toward the
// compile/solve ratio, and the pipelining hides most of the compile cost
// behind the solves.
func BenchmarkSweepDelta(b *testing.B) {
	ctx, combos := sweepDeltaFixture(b)
	run := func(mode eval.SweepMode) time.Duration {
		var flowsSeen atomic.Int64
		t0 := time.Now()
		err := eval.ForEachCaseMode(ctx, combos, 0, mode, func(idx int, inst *scenario.Instance) error {
			if inst.Problem.NumFlows == 0 {
				return fmt.Errorf("case %v compiled empty", combos[idx])
			}
			flowsSeen.Add(int64(inst.Problem.NumFlows))
			return nil
		})
		d := time.Since(t0)
		if err != nil {
			b.Fatal(err)
		}
		if flowsSeen.Load() == 0 {
			b.Fatal("sweep visited no flows")
		}
		return d
	}
	minDelta, minScratch := math.MaxFloat64, math.MaxFloat64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := float64(run(eval.SweepDelta).Nanoseconds()); d < minDelta {
			minDelta = d
		}
		if d := float64(run(eval.SweepScratch).Nanoseconds()); d < minScratch {
			minScratch = d
		}
	}
	b.StopTimer()
	b.ReportMetric(minDelta, "ns/op")
	b.ReportMetric(minScratch, "scratch-ns")
	b.ReportMetric(minScratch/minDelta, "delta-speedup-x")
}

// BenchmarkPlanStoreCompile measures the offline cost the lookup path
// amortizes: a full depth-2 sweep of the ATT deployment (21 cases) solved,
// delta-encoded, and written atomically. Like the lookup bench, ns/op is
// overridden with the fastest iteration so the perf gate compares real
// compile cost rather than host contention.
func BenchmarkPlanStoreCompile(b *testing.B) {
	dep, flows, ctx := benchFixtures(b)
	path := filepath.Join(b.TempDir(), "att.pmps")
	minNs := math.MaxFloat64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		stats, err := planstore.Compile(dep, flows, path, planstore.CompileOptions{Depth: 2, Context: ctx})
		if err != nil {
			b.Fatal(err)
		}
		if d := float64(time.Since(t0).Nanoseconds()); d < minNs {
			minNs = d
		}
		if stats.Entries != 21 {
			b.Fatalf("depth-2 ATT sweep compiled %d plans, want 21", stats.Entries)
		}
	}
	b.StopTimer()
	b.ReportMetric(minNs, "ns/op")
}
