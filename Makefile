GO ?= go

.PHONY: check fmt vet build test test-race bench bench-diff bench-gate profile

check: fmt vet build test-race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# bench runs the root benchmark suite once (fixed seeds, -benchtime 1x,
# -benchmem for B/op and allocs/op) and writes the raw `go test -json` stream
# to BENCH_<n>.json, where n is one past the highest existing baseline —
# compare files across commits to track drift.
#
# BENCH_<n>.json numbering is append-only: never renumber or overwrite a
# committed baseline. benchdiff and bench-gate always compare against the
# highest-numbered file, so each `make bench` extends the trajectory
# (BENCH_1 → BENCH_2 → …) and history stays diffable across commits.
bench:
	@n=1; while [ -e "BENCH_$$n.json" ]; do n=$$((n+1)); done; \
	out="BENCH_$$n.json"; \
	echo "writing $$out"; \
	$(GO) test -json -run '^$$' -bench . -benchtime 1x -benchmem . > "$$out" || { rm -f "$$out"; exit 1; }

# bench-diff prints an old/new/delta table for the two newest committed
# baselines (second-highest n = old, highest n = new).
bench-diff:
	$(GO) run ./cmd/benchdiff

# bench-gate re-runs the Fig. 5 sweep benchmarks, the Fig. 7 solver bench
# (which has a fixed branch-&-bound node budget, so its ns/op tracks solver
# throughput), the hot-path allocation benches (core.PM and warm
# Context.Build), the million-flow scale bench, the plan-store benches, the
# hierarchical-planning benches (the 1000-node sweep, whose multi-second
# iterations are robust by construction, and the min-ns-contention-robust
# partitioner), and the delta-sweep engine bench (min-ns robust, with the
# scratch engine measured alongside as scratch-ns), and fails if any of them
# regressed by more than 20% ns/op — or 10% allocs/op — against the newest
# committed BENCH_<n>.json baseline. CI runs this on every change.
GATE_BENCHES = BenchmarkFig5|BenchmarkFig7ComputationTime|BenchmarkAlgorithmPM$$|BenchmarkScenarioContextBuild$$|BenchmarkMillionFlow$$|BenchmarkPlanStoreLookup$$|BenchmarkPlanStoreCompile$$|BenchmarkHierarchical1000$$|BenchmarkRegionPartition$$|BenchmarkSweepDelta$$

bench-gate:
	@base=""; n=1; while [ -e "BENCH_$$n.json" ]; do base="BENCH_$$n.json"; n=$$((n+1)); done; \
	[ -n "$$base" ] || { echo "bench-gate: no BENCH_<n>.json baseline (run make bench)"; exit 1; }; \
	new="$$(mktemp)"; trap 'rm -f "$$new"' EXIT; \
	echo "comparing against $$base"; \
	$(GO) test -json -run '^$$' -bench '$(GATE_BENCHES)' -benchtime 3x -benchmem . > "$$new" || exit 1; \
	$(GO) run ./cmd/benchdiff -gate '$(GATE_BENCHES)' -max-regress 0.20 -max-allocs-regress 0.10 "$$base" "$$new"

# profile captures CPU and heap profiles of a pmsim evaluation run into
# ./profiles; inspect with `go tool pprof profiles/pmsim.cpu.pb.gz`.
profile:
	@mkdir -p profiles
	$(GO) run ./cmd/pmsim -scenario 2 -skip-optimal -cpuprofile profiles/pmsim.cpu.pb.gz -memprofile profiles/pmsim.mem.pb.gz > /dev/null
	@echo "wrote profiles/pmsim.cpu.pb.gz profiles/pmsim.mem.pb.gz"
