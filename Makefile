GO ?= go

.PHONY: check fmt vet build test test-race bench

check: fmt vet build test-race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# bench runs the root benchmark suite once (fixed seeds, -benchtime 1x) and
# writes the raw `go test -json` stream to BENCH_<n>.json, where n is one
# past the highest existing baseline — compare files across commits to track
# drift.
bench:
	@n=1; while [ -e "BENCH_$$n.json" ]; do n=$$((n+1)); done; \
	out="BENCH_$$n.json"; \
	echo "writing $$out"; \
	$(GO) test -json -run '^$$' -bench . -benchtime 1x . > "$$out" || { rm -f "$$out"; exit 1; }
