GO ?= go

.PHONY: check fmt vet build test test-race

check: fmt vet build test-race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...
