// Quickstart: load the evaluation topology, fail two controllers (the
// paper's headline-style case where the hub's only capable backup dies with
// it), run ProgrammabilityMedic, and print what was recovered.
package main

import (
	"flag"
	"fmt"
	"log"

	"pmedic"
)

func main() {
	dryRun := flag.Bool("dry-run", false, "build the example's inputs and exit before running it")
	flag.Parse()
	if err := run(*dryRun); err != nil {
		log.Fatal(err)
	}
}

func run(dryRun bool) error {
	// The embedded ATT-like SD-WAN: 25 switches, 6 controller domains.
	dep, err := pmedic.ATT()
	if err != nil {
		return err
	}
	// One flow per ordered node pair, routed on shortest paths.
	workload, err := pmedic.NewWorkload(dep, pmedic.WorkloadOptions{})
	if err != nil {
		return err
	}
	// Fail controllers C4 (the Chicago hub domain) and C5 (the lightly
	// loaded Florida domain — the only controller that could have absorbed
	// the hub switch whole).
	sc, err := pmedic.NewScenario(dep, workload, []int{3, 4})
	if err != nil {
		return err
	}
	if dryRun {
		fmt.Println("dry run: inputs built, exiting")
		return nil
	}
	fmt.Printf("failure case %s: %d offline switches, %d offline flows (%d unrecoverable)\n",
		sc.Label(), len(sc.Switches), sc.Problem.NumFlows, len(sc.Unrecoverable))

	pm, err := pmedic.PM(sc)
	if err != nil {
		return err
	}
	rf, err := pmedic.RetroFlow(sc)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-12s %10s %10s %10s %12s\n", "algorithm", "min prog", "total", "recovered", "overhead/flow")
	for _, r := range []*pmedic.Result{pm, rf} {
		fmt.Printf("%-12s %10d %10d %9d%% %10.2fms\n",
			r.Report.Algorithm,
			r.Report.MinProg,
			r.Report.TotalProg,
			100*r.Report.RecoveredFlows/sc.Problem.NumFlows,
			r.Report.PerFlowOverheadMs,
		)
	}
	fmt.Printf("\nPM recovers %.0f%% more total programmability than the switch-level baseline.\n",
		100*(float64(pm.Report.TotalProg)/float64(rf.Report.TotalProg)-1))

	// Where did the hub switch's flows go? Print its mapping.
	for i, sw := range sc.Switches {
		if sw != 13 {
			continue
		}
		jj := pm.Solution.SwitchController[i]
		if jj < 0 {
			fmt.Println("hub switch 13: left in legacy mode")
			break
		}
		site := dep.Controllers[sc.Active[jj]].Site
		sdn := 0
		for _, k := range sc.Problem.PairsAtSwitch(i) {
			if pm.Solution.Active[k] {
				sdn++
			}
		}
		fmt.Printf("hub switch 13 (γ=%d flows): remapped to the controller at site %d "+
			"with %d flows in SDN mode, the rest on the legacy table.\n",
			sc.Problem.Gamma[i], site, sdn)
	}
	return nil
}
