// Chaospush: the resilient recovery driver under an adversarial control
// plane. One switch's agent is simply gone (its controller failure took the
// management network down with it) and every other control channel runs
// through the chaos transport, which injects dial failures, connection
// resets, and latency. The driver retries transient faults under capped
// backoff, demotes the unreachable switch to legacy mode, re-plans the
// residual through PM, and reports planned vs. achieved programmability.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"pmedic/internal/chaos"
	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/openflow"
	"pmedic/internal/scenario"
	"pmedic/internal/sdnsim"
	"pmedic/internal/topo"
)

func main() {
	dryRun := flag.Bool("dry-run", false, "build the example's inputs and exit before running it")
	flag.Parse()
	if err := run(*dryRun); err != nil {
		log.Fatal(err)
	}
}

func run(dryRun bool) error {
	dep, err := topo.ATT()
	if err != nil {
		return err
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		return err
	}
	n, err := sdnsim.New(dep, flows)
	if err != nil {
		return err
	}
	failed := []int{3, 4}
	if err := n.FailControllers(failed...); err != nil {
		return err
	}
	inst, err := scenario.Build(dep, flows, failed)
	if err != nil {
		return err
	}
	sol, err := core.PM(inst.Problem)
	if err != nil {
		return err
	}
	if dryRun {
		fmt.Println("dry run: inputs built, exiting")
		return nil
	}

	// One agent per offline switch — except the first mapped one, which is
	// unreachable for good.
	var dead topo.NodeID = -1
	for i := range inst.Switches {
		if sol.SwitchController[i] >= 0 {
			dead = inst.Switches[i]
			break
		}
	}
	agents := make(map[topo.NodeID]*sdnsim.Agent)
	for _, swID := range inst.Switches {
		if swID == dead {
			continue
		}
		a, err := sdnsim.ServeSwitch(n.Switches[swID], "127.0.0.1:0")
		if err != nil {
			return err
		}
		agents[swID] = a
		defer func() { _ = a.Close() }()
	}
	fmt.Printf("recovery case %v: %d offline switches, switch %d unreachable\n",
		failed, len(inst.Switches), dead)

	// Every remaining control channel goes through the chaos transport.
	dialer := chaos.NewDialer(chaos.Config{
		Seed:         42,
		Latency:      time.Millisecond,
		Jitter:       3 * time.Millisecond,
		ResetProb:    0.2,
		MaxResets:    8,
		DialFailProb: 0.2,
		MaxDialFails: 6,
	})
	dial := func(addr string, timeout time.Duration) (*openflow.Conn, error) {
		tr, err := dialer.Dial(addr, timeout)
		if err != nil {
			return nil, err
		}
		c := openflow.NewConn(tr)
		c.SetIOTimeout(timeout)
		if err := c.Handshake(); err != nil {
			_ = tr.Close()
			return nil, err
		}
		c.SetIOTimeout(0)
		return c, nil
	}

	rep, err := sdnsim.PushRecoveryResilient(sdnsim.AgentAddrs(agents), flows, inst, sol, sdnsim.PushOptions{
		Seed:        42,
		Dial:        dial,
		MaxAttempts: 10,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	outcomes := append([]sdnsim.SwitchOutcome(nil), rep.Outcomes...)
	sort.Slice(outcomes, func(a, b int) bool { return outcomes[a].Switch < outcomes[b].Switch })
	fmt.Println("\nper-switch outcomes:")
	for _, out := range outcomes {
		if out.Status == sdnsim.PushLegacyPlanned {
			continue
		}
		line := fmt.Sprintf("  switch %2d: %-8s attempts=%d acked=%d",
			out.Switch, out.Status, out.Attempts, out.FlowModsAcked)
		if out.Err != nil {
			line += fmt.Sprintf("  (%v)", out.Err)
		}
		fmt.Println(line)
	}

	fmt.Printf("\nrounds=%d replanned=%v demoted=%v flow-mods acked=%d\n",
		rep.Rounds, rep.Replanned, rep.Demoted, rep.FlowModsAcked)
	fmt.Printf("planned:  r=%d total=%d\n", rep.Planned.MinProg, rep.Planned.TotalProg)
	fmt.Printf("achieved: r=%d total=%d\n", rep.Achieved.MinProg, rep.Achieved.TotalProg)

	// Cross-check the report against the agents' actual flow tables.
	for k, pr := range inst.Problem.Pairs {
		if rep.Final.SwitchController[pr.Switch] < 0 {
			continue
		}
		swID := inst.Switches[pr.Switch]
		lid := inst.FlowIDs[pr.Flow]
		_, has := agents[swID].Entry(lid)
		if has != rep.Final.Active[k] {
			return fmt.Errorf("switch %d flow %d: table=%v, report says %v", swID, lid, has, rep.Final.Active[k])
		}
	}
	fmt.Println("flow tables match the report")
	return nil
}
