// Daemon: the full online recovery loop, compressed into a few seconds. The
// stack is exactly what cmd/pmedicd runs — an openflow agent per switch, an
// echo liveness endpoint per controller, the heartbeat failure detector, and
// the event-driven medic — with a fast detector clock. The script kills two
// controllers at runtime, waits for the daemon to notice and converge on a
// pushed PM mapping, then revives them and waits for the fail-back to the
// ideal mapping, printing the daemon's structured event log at the end.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pmedic/internal/flow"
	"pmedic/internal/medic"
	"pmedic/internal/monitor"
	"pmedic/internal/openflow"
	"pmedic/internal/sdnsim"
	"pmedic/internal/topo"
)

func main() {
	dryRun := flag.Bool("dry-run", false, "build the stack, print the wiring, and exit without running the scenario")
	flag.Parse()
	if err := run(*dryRun); err != nil {
		log.Fatal(err)
	}
}

func run(dryRun bool) error {
	dep, err := topo.ATT()
	if err != nil {
		return err
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		return err
	}
	net, err := sdnsim.New(dep, flows)
	if err != nil {
		return err
	}

	agents := make(map[topo.NodeID]*sdnsim.Agent, len(net.Switches))
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	for _, sw := range net.Switches {
		a, err := sdnsim.ServeSwitch(sw, "127.0.0.1:0")
		if err != nil {
			return err
		}
		agents[sw.ID] = a
	}

	echos := make([]*openflow.EchoServer, len(net.Controllers))
	defer func() {
		for _, es := range echos {
			if es != nil {
				_ = es.Close()
			}
		}
	}()
	for j := range net.Controllers {
		if echos[j], err = openflow.ServeEcho("127.0.0.1:0"); err != nil {
			return err
		}
	}
	net.OnControllerChange = func(j int, alive bool) { echos[j].SetAlive(alive) }

	interval := 20 * time.Millisecond
	targets := make([]monitor.Target, len(net.Controllers))
	for j := range net.Controllers {
		targets[j] = monitor.Target{ID: j, Name: fmt.Sprintf("controller-%d", j), Addr: echos[j].Addr()}
	}
	mon := monitor.New(targets, monitor.Config{
		Interval:  interval,
		Threshold: 3,
		Debounce:  3 * interval,
		Seed:      1,
	})
	m, err := medic.New(medic.Config{
		Dep:   dep,
		Flows: flows,
		Addrs: sdnsim.AgentAddrs(agents),
		Net:   net,
		Push:  sdnsim.PushOptions{Seed: 1},
	})
	if err != nil {
		return err
	}

	fmt.Printf("daemon stack up: %d switch agents, %d controller echo endpoints, detector interval %v\n",
		len(agents), len(echos), interval)
	if dryRun {
		fmt.Println("dry run, exiting")
		return nil
	}

	mon.Start()
	m.Start(mon.Events())
	defer m.Stop()
	defer mon.Stop()

	wait := func(what string, cond func(medic.Status) bool) (medic.Status, error) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			st := m.Status()
			if cond(st) {
				return st, nil
			}
			if time.Now().After(deadline) {
				return st, fmt.Errorf("%s: not reached (last state: converged=%v ideal=%v failed=%v)",
					what, st.Converged, st.Ideal, st.Failed)
			}
			time.Sleep(interval)
		}
	}

	// Act 1: the paper's headline-style case, injected at runtime — the hub
	// domain's controller dies together with its only capable backup.
	fmt.Println("\n--- killing controllers 3 and 4 ---")
	if err := net.StopController(3); err != nil {
		return err
	}
	if err := net.StopController(4); err != nil {
		return err
	}
	st, err := wait("recovery convergence", func(s medic.Status) bool {
		return s.Converged && !s.Ideal && len(s.Failed) == 2
	})
	if err != nil {
		return err
	}
	fmt.Printf("converged on %s: r=%d, total=%d, recovered %d/%d offline flows, %d flow-mods acked\n",
		st.Case, st.MinProg, st.TotalProg, st.RecoveredFlows, st.OfflineFlows, st.FlowModsAcked)
	remapped := 0
	for _, e := range st.Mapping {
		if e.Controller >= 0 {
			remapped++
		}
	}
	fmt.Printf("%d offline switches remapped to surviving controllers, %d left in legacy mode\n",
		remapped, len(st.Mapping)-remapped)

	// Act 2: both controllers return; the daemon fails back on its own.
	fmt.Println("\n--- reviving controllers 3 and 4 ---")
	if err := net.StartController(3); err != nil {
		return err
	}
	if err := net.StartController(4); err != nil {
		return err
	}
	st, err = wait("fail-back", func(s medic.Status) bool { return s.Ideal && s.Converged })
	if err != nil {
		return err
	}
	fmt.Printf("ideal mapping restored after %d domain restore(s)\n", st.Restores)

	fmt.Println("\nthe daemon's event log:")
	for _, e := range st.Events {
		fmt.Printf("  %-9s %s\n", e.Kind, e.Msg)
	}
	return nil
}
