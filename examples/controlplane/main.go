// Controlplane: a live OpenFlow-style control channel over real TCP on
// localhost. A minimal controller takes mastership of a "switch" process,
// pushes the flow entries PM selected for one recovered switch, and verifies
// them with a barrier — the wire-level counterpart of what the simulator's
// ApplyRecovery models analytically.
package main

import (
	"flag"
	"fmt"
	"log"

	"pmedic"
	"pmedic/internal/openflow"
)

func main() {
	dryRun := flag.Bool("dry-run", false, "build the example's inputs and exit before running it")
	flag.Parse()
	if err := run(*dryRun); err != nil {
		log.Fatal(err)
	}
}

func run(dryRun bool) error {
	// Compute a recovery first: case (13, 16), hub switch 13.
	dep, err := pmedic.ATT()
	if err != nil {
		return err
	}
	workload, err := pmedic.NewWorkload(dep, pmedic.WorkloadOptions{})
	if err != nil {
		return err
	}
	sc, err := pmedic.NewScenario(dep, workload, []int{3, 4})
	if err != nil {
		return err
	}
	res, err := pmedic.PM(sc)
	if err != nil {
		return err
	}
	if dryRun {
		fmt.Println("dry run: inputs built, exiting")
		return nil
	}
	// Collect the flow-mods for the hub switch.
	var mods []openflow.FlowMod
	for i, sw := range sc.Switches {
		if sw != 13 {
			continue
		}
		for _, k := range sc.Problem.PairsAtSwitch(i) {
			if !res.Solution.Active[k] {
				continue
			}
			f := &workload.Flows[sc.FlowIDs[sc.Problem.Pairs[k].Flow]]
			next := f.Path[1] // placeholder next hop; real path position found below
			for h := 0; h+1 < len(f.Path); h++ {
				if f.Path[h] == 13 {
					next = f.Path[h+1]
					break
				}
			}
			mods = append(mods, openflow.FlowMod{
				Command:  openflow.FlowAdd,
				Priority: 100,
				Match:    openflow.Match{FlowID: uint32(f.ID), Src: uint32(f.Src), Dst: uint32(f.Dst)},
				NextHop:  uint32(next),
			})
		}
	}
	fmt.Printf("recovery for case %s selects %d SDN-mode flows at the hub switch\n", sc.Label(), len(mods))

	// The "switch": accepts a channel, answers features/role/barrier, and
	// installs whatever flow-mods arrive.
	l, err := openflow.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = l.Close() }()
	done := make(chan error, 1)
	go func() { done <- switchSide(l) }()

	// The "controller": dial, take mastership, push entries, barrier.
	conn, err := openflow.Dial(l.Addr())
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	if _, err := conn.Send(openflow.FeaturesRequest{}); err != nil {
		return err
	}
	msg, _, err := conn.Recv()
	if err != nil {
		return err
	}
	feat, ok := msg.(openflow.FeaturesReply)
	if !ok {
		return fmt.Errorf("expected features reply, got %v", msg.MsgType())
	}
	fmt.Printf("switch datapath %#x: hybrid pipeline supported = %v\n", feat.DatapathID, feat.Hybrid)

	if _, err := conn.Send(openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 1}); err != nil {
		return err
	}
	if msg, _, err = conn.Recv(); err != nil {
		return err
	}
	if role, ok := msg.(openflow.RoleReply); ok {
		fmt.Printf("mastership acquired (role %d, generation %d)\n", role.Role, role.GenerationID)
	}

	for _, m := range mods {
		if _, err := conn.Send(m); err != nil {
			return err
		}
	}
	if _, err := conn.Send(openflow.BarrierRequest{}); err != nil {
		return err
	}
	if msg, _, err = conn.Recv(); err != nil {
		return err
	}
	if _, ok := msg.(openflow.BarrierReply); !ok {
		return fmt.Errorf("expected barrier reply, got %v", msg.MsgType())
	}
	fmt.Printf("pushed %d flow-mods and synchronized with a barrier\n", len(mods))
	_ = conn.Close()
	return <-done
}

// switchSide is the minimal datapath agent.
func switchSide(l *openflow.Listener) error {
	conn, err := l.Accept()
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	installed := 0
	for {
		msg, h, err := conn.Recv()
		if err != nil {
			// Channel closed by the controller once done.
			fmt.Printf("switch: channel closed after installing %d entries\n", installed)
			return nil
		}
		switch m := msg.(type) {
		case openflow.FeaturesRequest:
			err = conn.SendXID(openflow.FeaturesReply{DatapathID: 13, NumTables: 2, Hybrid: true}, h.XID)
		case openflow.RoleRequest:
			err = conn.SendXID(openflow.RoleReply{Role: m.Role, GenerationID: m.GenerationID}, h.XID)
		case openflow.FlowMod:
			installed++
		case openflow.BarrierRequest:
			err = conn.SendXID(openflow.BarrierReply{}, h.XID)
		case openflow.Echo:
			if !m.Reply {
				err = conn.SendXID(openflow.Echo{Reply: true, Data: m.Data}, h.XID)
			}
		}
		if err != nil {
			return err
		}
	}
}
