// Hybridswitch: a guided walk through the three switch pipelines of the
// paper's Fig. 2 — pure OpenFlow, pure legacy (OSPF), and the hybrid
// high-priority-flow-table/legacy-fallthrough mode that makes per-flow
// programmability recovery possible without a middle layer.
package main

import (
	"flag"
	"fmt"
	"log"

	"pmedic"
	"pmedic/internal/sdnsim"
)

func main() {
	dryRun := flag.Bool("dry-run", false, "build the example's inputs and exit before running it")
	flag.Parse()
	if err := run(*dryRun); err != nil {
		log.Fatal(err)
	}
}

func run(dryRun bool) error {
	dep, err := pmedic.ATT()
	if err != nil {
		return err
	}
	workload, err := pmedic.NewWorkload(dep, pmedic.WorkloadOptions{})
	if err != nil {
		return err
	}
	net, err := pmedic.Simulate(dep, workload)
	if err != nil {
		return err
	}
	if dryRun {
		fmt.Println("dry run: inputs built, exiting")
		return nil
	}

	// Pick a multi-hop flow and narrate its first switch.
	f := &workload.Flows[4]
	sw := net.Switches[f.Src]
	name := func(v pmedic.NodeID) string {
		n, _ := dep.Graph.Node(v)
		return n.Name
	}
	fmt.Printf("flow %d: %s -> %s, installed path %v\n\n", f.ID, name(f.Src), name(f.Dst), f.Path)

	show := func(label string) {
		nh, verdict := sw.Forward(f.ID, f.Dst)
		switch verdict {
		case sdnsim.VerdictFlowTable:
			fmt.Printf("%-28s -> flow-table hit, next hop %s\n", label, name(nh))
		case sdnsim.VerdictLegacy:
			fmt.Printf("%-28s -> miss, legacy (OSPF) table, next hop %s\n", label, name(nh))
		case sdnsim.VerdictPuntNoMatch:
			fmt.Printf("%-28s -> miss, packet punted to controller\n", label)
		default:
			fmt.Printf("%-28s -> %v\n", label, verdict)
		}
	}

	fmt.Println("Fig. 2(a) — pure OpenFlow pipeline:")
	sw.Pipeline = sdnsim.PipelineSDN
	show("  with flow entry")
	sw.RemoveEntry(f.ID)
	show("  entry removed")

	fmt.Println("\nFig. 2(b) — pure legacy pipeline:")
	sw.Pipeline = sdnsim.PipelineLegacy
	show("  (flow table ignored)")

	fmt.Println("\nFig. 2(c) — hybrid pipeline (what PM relies on):")
	sw.Pipeline = sdnsim.PipelineHybrid
	show("  without flow entry")
	sw.InstallEntry(sdnsim.FlowEntry{FlowID: f.ID, Priority: 100, NextHop: f.Path[1]})
	show("  with flow entry")

	fmt.Println("\nThe hybrid mode is exactly why recovery can pick, per flow, whether a")
	fmt.Println("controller session is spent (SDN mode) or the flow rides OSPF for free:")
	fmt.Println("removing one flow's entry changes that flow only — every other flow's")
	fmt.Println("entry keeps matching first.")

	// Show that per-flow independence concretely on the full network.
	other := &workload.Flows[5]
	net.Switches[f.Src].RemoveEntry(f.ID)
	trA, err := net.Inject(f.ID)
	if err != nil {
		return err
	}
	trB, err := net.Inject(other.ID)
	if err != nil {
		return err
	}
	fmt.Printf("\nflow %d (entry removed at %s): verdict at first hop = %v\n",
		f.ID, name(f.Src), trA.Verdicts[0])
	fmt.Printf("flow %d (untouched):           verdict at first hop = %v\n",
		other.ID, trB.Verdicts[0])
	return nil
}
