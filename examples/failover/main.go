// Failover: a live, event-driven controller-failure drill on the behavioural
// simulator. It watches one transcontinental flow, kills the hub domain's
// controller mid-run, shows that the data plane keeps forwarding while
// reroutability is lost, applies PM's recovery, and then actually reroutes
// the flow at the recovered hub switch.
package main

import (
	"flag"
	"fmt"
	"log"

	"pmedic"
)

func main() {
	dryRun := flag.Bool("dry-run", false, "build the example's inputs and exit before running it")
	flag.Parse()
	if err := run(*dryRun); err != nil {
		log.Fatal(err)
	}
}

func run(dryRun bool) error {
	dep, err := pmedic.ATT()
	if err != nil {
		return err
	}
	workload, err := pmedic.NewWorkload(dep, pmedic.WorkloadOptions{})
	if err != nil {
		return err
	}
	net, err := pmedic.Simulate(dep, workload)
	if err != nil {
		return err
	}
	if dryRun {
		fmt.Println("dry run: inputs built, exiting")
		return nil
	}

	// Pick a flow crossing the Chicago hub as transit.
	watched := -1
	for l := range workload.Flows {
		f := &workload.Flows[l]
		if f.Src != 13 && f.Dst != 13 && f.Traverses(13) && len(f.Path) >= 4 {
			watched = l
			break
		}
	}
	if watched < 0 {
		return fmt.Errorf("no hub-transit flow found")
	}
	id := workload.Flows[watched].ID
	name := func(v pmedic.NodeID) string {
		n, _ := dep.Graph.Node(v)
		return n.Name
	}
	f := &workload.Flows[watched]
	fmt.Printf("watching flow %d: %s -> %s via %v\n", id, name(f.Src), name(f.Dst), f.Path)

	tr, err := net.Inject(id)
	if err != nil {
		return err
	}
	fmt.Printf("t=%6.2fms  steady state: delivered over %v (%.2f ms one-way)\n",
		net.Sim.Now(), tr.Path, tr.LatencyMs)
	fmt.Printf("           programmable at hub 13? %v\n", net.ProgrammableAt(id, 13))

	// --- controller failure ---
	if err := net.FailControllers(3); err != nil {
		return err
	}
	fmt.Printf("\nt=%6.2fms  controller C4 (site 13) FAILS: offline switches %v\n",
		net.Sim.Now(), net.OfflineSwitches())
	tr, err = net.Inject(id)
	if err != nil {
		return err
	}
	fmt.Printf("t=%6.2fms  data plane survives: delivered over %v\n", net.Sim.Now(), tr.Path)
	fmt.Printf("           programmable at hub 13? %v  (control is gone)\n", net.ProgrammableAt(id, 13))

	// --- recovery ---
	sc, err := pmedic.NewScenario(dep, workload, []int{3})
	if err != nil {
		return err
	}
	res, err := pmedic.PM(sc)
	if err != nil {
		return err
	}
	msgs, err := net.ApplyRecovery(sc, res.Solution)
	if err != nil {
		return err
	}
	fmt.Printf("\nt=%6.2fms  PM recovery applied: %d control messages, %d/%d offline flows programmable again\n",
		net.Sim.Now(), msgs, res.Report.RecoveredFlows, sc.Problem.NumFlows)
	fmt.Printf("           programmable at hub 13? %v\n", net.ProgrammableAt(id, 13))

	// --- prove it: reroute the watched flow at the hub ---
	entry := pmedic.NodeID(-1)
	for _, v := range dep.Graph.Neighbors(13) {
		if !f.Traverses(v) {
			entry = v
			break
		}
	}
	if entry >= 0 && net.ProgrammableAt(id, 13) {
		if err := net.Reroute(id, 13, entry); err != nil {
			fmt.Printf("           reroute via %s refused: %v\n", name(entry), err)
		} else {
			tr, err = net.Inject(id)
			if err != nil {
				return err
			}
			fmt.Printf("t=%6.2fms  rerouted at the hub toward %s: new path %v (delivered=%v)\n",
				net.Sim.Now(), name(entry), tr.Path, tr.Delivered)
		}
	}
	fmt.Printf("\nsimulator stats: %+v\n", net.Stats)
	return nil
}
