// Sweep: the paper's evaluation in one command — run PM against RetroFlow
// and ProgrammabilityGuardian over every two-controller failure combination
// and print the Fig. 5 series (add -optimal to include the exact solver).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"pmedic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	failures := flag.Int("failures", 2, "simultaneous controller failures (1, 2, or 3)")
	withOptimal := flag.Bool("optimal", false, "include the exact solver (slower)")
	optTime := flag.Duration("opt-time", 30*time.Second, "per-case budget for the exact solver")
	dryRun := flag.Bool("dry-run", false, "build the example's inputs and exit before running it")
	flag.Parse()

	dep, err := pmedic.ATT()
	if err != nil {
		return err
	}
	workload, err := pmedic.NewWorkload(dep, pmedic.WorkloadOptions{})
	if err != nil {
		return err
	}
	algs := pmedic.Algorithms(*optTime)
	if !*withOptimal {
		algs = algs[:3]
	}
	if *dryRun {
		fmt.Println("dry run: inputs built, exiting")
		return nil
	}
	cases, err := pmedic.Sweep(dep, workload, *failures, algs)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "CASE\tALG\tMIN\tMEDIAN\tTOTAL\t%% OF RETROFLOW\tRECOVERED\tOVERHEAD/FLOW\n")
	for _, c := range cases {
		for _, alg := range algs {
			rep := c.Report(alg.Name)
			if rep == nil {
				fmt.Fprintf(w, "%s\t%s\t-\t-\t-\t-\t-\t-\n", c.Label, alg.Name)
				continue
			}
			box, _ := c.ProgBox(alg.Name)
			pct, _ := c.TotalProgPctOf(alg.Name, "RetroFlow")
			flows, _ := c.RecoveredFlowPct(alg.Name)
			over, _ := c.PerFlowOverheadMs(alg.Name)
			fmt.Fprintf(w, "%s\t%s\t%d\t%.1f\t%d\t%.0f%%\t%.0f%%\t%.2fms\n",
				c.Label, alg.Name, rep.MinProg, box.Median, rep.TotalProg, pct, flows, over)
		}
	}
	return w.Flush()
}
