// Trafficshift: the paper's motivation made concrete. Traffic varies, a link
// runs hot, and the operator's only remedy is rerouting — which requires
// path programmability. The example measures how much of the hottest link's
// load is actually sheddable (a) in steady state, (b) after a double
// controller failure, and (c) after each algorithm's recovery, on the
// behavioural simulator.
package main

import (
	"flag"
	"fmt"
	"log"

	"pmedic"
	"pmedic/internal/flow"
	"pmedic/internal/traffic"
)

func main() {
	dryRun := flag.Bool("dry-run", false, "build the example's inputs and exit before running it")
	flag.Parse()
	if err := run(*dryRun); err != nil {
		log.Fatal(err)
	}
}

func run(dryRun bool) error {
	dep, err := pmedic.ATT()
	if err != nil {
		return err
	}
	workload, err := pmedic.NewWorkload(dep, pmedic.WorkloadOptions{})
	if err != nil {
		return err
	}
	// Gravity-model demands with a spike: the biggest flows cross the hubs.
	m, err := traffic.Gravity(dep.Graph, workload, 1.0)
	if err != nil {
		return err
	}
	lm, err := traffic.Loads(workload, m, 250)
	if err != nil {
		return err
	}
	if dryRun {
		fmt.Println("dry run: inputs built, exiting")
		return nil
	}
	a, b, util, _ := lm.Hottest()
	name := func(v pmedic.NodeID) string {
		n, _ := dep.Graph.Node(v)
		return n.Name
	}
	fmt.Printf("hottest link: %s — %s at %.0f%% utilization (load %.1f)\n",
		name(a), name(b), 100*util, lm.Load(a, b))

	net, err := pmedic.Simulate(dep, workload)
	if err != nil {
		return err
	}
	sheddable := func(label string) error {
		s, err := traffic.SheddableLoad(workload, m, a, b, func(id flow.ID) bool {
			return net.Programmable(id)
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %6.1f of %.1f load sheddable (%.0f%%)\n",
			label, s, lm.Load(a, b), 100*s/lm.Load(a, b))
		return nil
	}

	if err := sheddable("steady state:"); err != nil {
		return err
	}

	// Double failure: the hub's domain and its backup controller.
	if err := net.FailControllers(3, 4); err != nil {
		return err
	}
	if err := sheddable("after failing C4+C5:"); err != nil {
		return err
	}

	sc, err := pmedic.NewScenario(dep, workload, []int{3, 4})
	if err != nil {
		return err
	}
	for _, alg := range []struct {
		name string
		run  func(*pmedic.Scenario) (*pmedic.Result, error)
	}{
		{"RetroFlow", pmedic.RetroFlow},
		{"PM", pmedic.PM},
	} {
		// Fresh network per algorithm: same failure, different recovery.
		net, err = pmedic.Simulate(dep, workload)
		if err != nil {
			return err
		}
		if err := net.FailControllers(3, 4); err != nil {
			return err
		}
		res, err := alg.run(sc)
		if err != nil {
			return err
		}
		if _, err := net.ApplyRecovery(sc, res.Solution); err != nil {
			return err
		}
		if err := sheddable("after " + alg.name + " recovery:"); err != nil {
			return err
		}
	}
	fmt.Println("\nMany flows stay shiftable even under failure — they cross online switches")
	fmt.Println("elsewhere on their paths — but only PM restores the full headroom; the")
	fmt.Println("residual pinned load under RetroFlow is exactly the flows whose only")
	fmt.Println("reroute points sit in the unrecoverable hub switch.")
	return nil
}
