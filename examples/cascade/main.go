// Cascade: the cascading-controller-failure risk the paper warns about
// (Yao et al., ICNP'13). After a failure, recovery piles extra control load
// onto the survivors; if one of them is pushed past a safety threshold it
// fails too, and the cascade continues. Because switch-level recovery moves
// whole-γ loads and per-flow recovery spreads sessions, the two differ in
// how far the cascade runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pmedic"
	"pmedic/internal/eval"
)

func main() {
	dryRun := flag.Bool("dry-run", false, "build the example's inputs and exit before running it")
	flag.Parse()
	if err := run(*dryRun); err != nil {
		log.Fatal(err)
	}
}

func run(dryRun bool) error {
	dep, err := pmedic.ATT()
	if err != nil {
		return err
	}
	workload, err := pmedic.NewWorkload(dep, pmedic.WorkloadOptions{})
	if err != nil {
		return err
	}
	algs := pmedic.Algorithms(time.Second)[:3]
	if dryRun {
		fmt.Println("dry run: inputs built, exiting")
		return nil
	}
	for _, trigger := range []float64{1.0, 0.95, 0.9} {
		fmt.Printf("=== cascade trigger: controllers fail above %.0f%% load ===\n", 100*trigger)
		for _, alg := range algs {
			res, err := eval.Cascade(dep, workload, []int{3}, alg, trigger)
			if err != nil {
				return err
			}
			last := res.FinalReport()
			status := "stabilized"
			if res.Collapsed {
				status = "TOTAL COLLAPSE"
			}
			fmt.Printf("%-10s %d round(s), %s", alg.Name, res.SurvivedRounds(), status)
			if last != nil {
				fmt.Printf("; final recovery: %d flows, total programmability %d",
					last.RecoveredFlows, last.TotalProg)
			}
			fmt.Println()
			for i, round := range res.Rounds {
				if len(round.Overloaded) > 0 {
					sites := make([]pmedic.NodeID, 0, len(round.Overloaded))
					for _, j := range round.Overloaded {
						sites = append(sites, dep.Controllers[j].Site)
					}
					fmt.Printf("           round %d overloads controllers at sites %v\n", i+1, sites)
				}
			}
		}
		fmt.Println()
	}
	return nil
}
