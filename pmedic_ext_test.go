package pmedic

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeSuccessiveAndChurn(t *testing.T) {
	dep, w := fixtures(t)
	steps, err := NewSuccessive(dep, w, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	prev, err := PM(steps[0].Instance)
	if err != nil {
		t.Fatal(err)
	}
	next, err := PM(steps[1].Instance)
	if err != nil {
		t.Fatal(err)
	}
	churn := Churn(steps[0].Instance, prev, steps[1].Instance, next)
	if churn.CommonSwitches == 0 || churn.CommonPairs == 0 {
		t.Fatalf("churn = %+v", churn)
	}
}

func TestFacadeCascadeOrderingByGranularity(t *testing.T) {
	dep, w := fixtures(t)
	algs := Algorithms(time.Second)
	pmRes, err := Cascade(dep, w, []int{3}, algs[0], 0.95)
	if err != nil {
		t.Fatal(err)
	}
	rfRes, err := Cascade(dep, w, []int{3}, algs[1], 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Per-flow recovery spreads load; switch-level recovery concentrates it.
	if pmRes.SurvivedRounds() > rfRes.SurvivedRounds() && rfRes.Collapsed && !pmRes.Collapsed {
		t.Fatal("unreachable: guard inverted")
	}
	if pmRes.Collapsed && !rfRes.Collapsed {
		t.Fatal("PM cascaded further than RetroFlow at the same trigger")
	}
}

func TestFacadeTrafficPipeline(t *testing.T) {
	dep, w := fixtures(t)
	m, err := GravityTraffic(dep, w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := LinkLoadMap(w, m, 250)
	if err != nil {
		t.Fatal(err)
	}
	a, b, util, ok := lm.Hottest()
	if !ok || util <= 0 {
		t.Fatalf("hottest = %d-%d %v", a, b, util)
	}
	uni, err := UniformTraffic(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if uni.Total() <= 0 {
		t.Fatal("uniform total")
	}
}

func TestFacadeGraphMLAndAutoDeployment(t *testing.T) {
	doc := `<graphml>
	  <key attr.name="Latitude" for="node" id="a"/>
	  <key attr.name="Longitude" for="node" id="b"/>
	  <key attr.name="label" for="node" id="c"/>
	  <graph>
	    <node id="n0"><data key="a">40.7</data><data key="b">-74.0</data><data key="c">NYC</data></node>
	    <node id="n1"><data key="a">41.9</data><data key="b">-87.6</data><data key="c">CHI</data></node>
	    <node id="n2"><data key="a">34.1</data><data key="b">-118.2</data><data key="c">LAX</data></node>
	    <node id="n3"><data key="a">32.8</data><data key="b">-96.8</data><data key="c">DAL</data></node>
	    <edge source="n0" target="n1"/>
	    <edge source="n1" target="n2"/>
	    <edge source="n1" target="n3"/>
	    <edge source="n3" target="n2"/>
	  </graph></graphml>`
	g, err := LoadGraphML(strings.NewReader(doc), GraphMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := AutoDeployment(g, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(dep, WorkloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario(dep, w, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PM(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.RecoveredFlows == 0 {
		t.Fatal("recovery on a loaded GraphML topology recovered nothing")
	}
}
