// Package pmedic is a Go reproduction of ProgrammabilityMedic (Dou, Guo,
// Xia — IEEE ICDCS 2021): predictable path-programmability recovery under
// multiple controller failures in software-defined WANs.
//
// When SDN controllers fail, the switches they manage go offline and the
// flows crossing those switches can no longer be rerouted. ProgrammabilityMedic
// (PM) restores that path programmability by exploiting the hybrid
// OpenFlow/OSPF pipeline of high-end commercial switches: per offline flow,
// per offline switch, it decides whether the flow stays on the legacy table
// (free) or gets an OpenFlow entry (costing one session on the controller
// the switch is remapped to), balancing per-flow programmability first and
// total programmability second — the FMSSM optimization problem.
//
// The module contains everything the paper's evaluation needs, implemented
// from scratch on the standard library:
//
//   - the FMSSM model, the PM heuristic, and the RetroFlow (switch-level)
//     and ProgrammabilityGuardian (flow-level) baselines (internal/core);
//   - an exact comparator solving the FMSSM integer program with a pure-Go
//     bounded-variable simplex and branch & bound (internal/lp, internal/mip,
//     internal/opt);
//   - the evaluation topology — an ATT-North-America-like 25-node backbone
//     with six controller domains (internal/topo) — and the all-pairs
//     shortest-path workload with path-programmability coefficients
//     (internal/flow);
//   - a behavioural SD-WAN simulator: hybrid-pipeline switches over
//     OSPF-computed legacy tables, controller failure injection, and
//     recovery application with real packet traces (internal/sdnsim,
//     internal/ospf, internal/des), plus an OpenFlow-style control-channel
//     codec and TCP transport (internal/openflow);
//   - the experiment harness regenerating every figure of the paper
//     (internal/eval, cmd/pmsim, and the benchmarks in bench_test.go).
//
// This package is the façade: it wires those pieces into the common
// workflow — load the topology, generate the workload, pick a failure case,
// run the algorithms, and compare reports. See the examples/ directory for
// runnable programs and DESIGN.md for the system inventory.
package pmedic
