package pmedic

import (
	"errors"
	"fmt"
	"io"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/eval"
	"pmedic/internal/flow"
	"pmedic/internal/opt"
	"pmedic/internal/scenario"
	"pmedic/internal/sdnsim"
	"pmedic/internal/topo"
	"pmedic/internal/traffic"
)

// Re-exported building blocks. The aliases keep one set of types across the
// façade and the internal packages, so values flow freely between the two.
type (
	// Deployment is a topology plus its controller domains.
	Deployment = topo.Deployment
	// Controller is one control-plane instance of a deployment.
	Controller = topo.Controller
	// NodeID identifies a switch site.
	NodeID = topo.NodeID
	// Workload is the generated flow set.
	Workload = flow.Set
	// WorkloadOptions tunes workload generation.
	WorkloadOptions = flow.Options
	// Scenario is a compiled failure case.
	Scenario = scenario.Instance
	// Problem is the FMSSM optimization instance of a scenario.
	Problem = core.Problem
	// Solution is a recovery decision: switch mappings plus per-pair modes.
	Solution = core.Solution
	// Report carries the paper's per-case metrics for one solution.
	Report = core.Report
	// Network is the behavioural SD-WAN simulator.
	Network = sdnsim.Network
	// CaseResult aggregates every algorithm's report for one failure case.
	CaseResult = eval.CaseResult
	// Algorithm is a named recovery algorithm for sweeps.
	Algorithm = eval.Algorithm
	// ScenarioContext caches the failure-independent half of scenario
	// compilation (delay vectors, middle-layer placement, domain loads) for
	// one (Deployment, Workload) pair. It is immutable and safe for
	// concurrent use; build it once and compile every failure case from it.
	ScenarioContext = scenario.Context
	// SweepOptions tunes SweepWith: worker-pool width and an optional
	// pre-built ScenarioContext to share across sweeps.
	SweepOptions = eval.Options
)

// ErrNoResult marks an algorithm run that produced no solution (the exact
// solver proving infeasibility or running out of budget). Sweeps tolerate
// it; direct calls surface it.
var ErrNoResult = eval.ErrNoResult

// ATT returns the embedded evaluation topology: 25 nodes, 112 directed
// links, six controllers of capacity 500 (the reproduction's equivalent of
// the paper's Topology Zoo ATT setup).
func ATT() (*Deployment, error) { return topo.ATT() }

// NewWorkload routes one flow per ordered node pair on shortest paths and
// computes the path-programmability coefficients. A zero Options value
// selects the paper-calibrated defaults.
func NewWorkload(dep *Deployment, opts WorkloadOptions) (*Workload, error) {
	return flow.Generate(dep.Graph, opts)
}

// NewScenario compiles the failure of the given controllers (indices into
// dep.Controllers) into an FMSSM instance with full index bookkeeping.
func NewScenario(dep *Deployment, w *Workload, failed []int) (*Scenario, error) {
	return scenario.Build(dep, w, failed)
}

// NewScenarioContext precomputes everything about scenario compilation that
// does not depend on which controllers fail. Compiling a case through the
// context (ScenarioContext.Build) yields the same Scenario as NewScenario at
// a fraction of the cost, which matters when sweeping many failure sets.
func NewScenarioContext(dep *Deployment, w *Workload) (*ScenarioContext, error) {
	return scenario.NewContext(dep, w)
}

// Result pairs a solution with its evaluated report.
type Result struct {
	Solution *Solution
	Report   *Report
}

func evaluate(sc *Scenario, sol *Solution, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	rep, err := sc.Evaluate(sol)
	if err != nil {
		return nil, err
	}
	return &Result{Solution: sol, Report: rep}, nil
}

// PM runs the paper's heuristic (Algorithm 1) on the scenario.
func PM(sc *Scenario) (*Result, error) {
	sol, err := core.PM(sc.Problem)
	return evaluate(sc, sol, err)
}

// RetroFlow runs the switch-level baseline (IWQoS'19).
func RetroFlow(sc *Scenario) (*Result, error) {
	sol, err := core.RetroFlow(sc.Problem)
	return evaluate(sc, sol, err)
}

// PG runs the flow-level middle-layer baseline ProgrammabilityGuardian
// (IWQoS'20); its communication overhead is accounted through the
// scenario's FlowVisor-style middle-layer delay model.
func PG(sc *Scenario) (*Result, error) {
	sol, err := core.PG(sc.Problem)
	return evaluate(sc, sol, err)
}

// OptimalOptions tunes the exact comparator.
type OptimalOptions struct {
	// TimeLimit bounds the branch & bound wall clock (default 60s).
	TimeLimit time.Duration
	// WarmStart seeds the search with PM's solution when it is feasible for
	// the exact model (default true).
	WarmStart *bool
}

// Optimal solves the scenario's FMSSM integer program with the pure-Go
// LP/branch-&-bound stack. It returns ErrNoResult (wrapped) when the model
// is infeasible — the paper's "Optimal cannot always have results" cases —
// or when no integer-feasible point was found within the budget.
func Optimal(sc *Scenario, opts OptimalOptions) (*Result, error) {
	o := opt.Options{TimeLimit: opts.TimeLimit}
	if opts.WarmStart == nil || *opts.WarmStart {
		if warm, err := core.PM(sc.Problem); err == nil {
			o.Warm = warm
		}
	}
	sol, err := opt.Solve(sc.Problem, o)
	if errors.Is(err, opt.ErrNoSolution) {
		return nil, fmt.Errorf("%w: %v", ErrNoResult, err)
	}
	return evaluate(sc, sol, err)
}

// Algorithms returns the paper's four comparators, ready for Sweep.
// optimalBudget bounds each exact solve; zero selects the default.
func Algorithms(optimalBudget time.Duration) []Algorithm {
	algs := []Algorithm{
		{Name: "PM", Run: func(sc *Scenario) (*Solution, error) {
			return core.PM(sc.Problem)
		}},
		{Name: "RetroFlow", Run: func(sc *Scenario) (*Solution, error) {
			return core.RetroFlow(sc.Problem)
		}},
		{Name: "PG", Run: func(sc *Scenario) (*Solution, error) {
			return core.PG(sc.Problem)
		}},
		{
			Name: "Optimal",
			Run: func(sc *Scenario) (*Solution, error) {
				warm, err := core.PM(sc.Problem)
				if err != nil {
					warm = nil
				}
				return solveOptimal(sc, optimalBudget, warm)
			},
			// Sweeps seed the branch & bound incumbent from the PM solution
			// the harness already computed for the case.
			RunSeeded: func(sc *Scenario, prior map[string]*Solution) (*Solution, error) {
				warm := prior["PM"]
				if warm == nil {
					warm, _ = core.PM(sc.Problem)
				}
				return solveOptimal(sc, optimalBudget, warm)
			},
		},
	}
	return algs
}

func solveOptimal(sc *Scenario, budget time.Duration, warm *Solution) (*Solution, error) {
	sol, err := opt.Solve(sc.Problem, opt.Options{TimeLimit: budget, Warm: warm})
	if errors.Is(err, opt.ErrNoSolution) {
		return nil, fmt.Errorf("%w: %v", ErrNoResult, err)
	}
	return sol, err
}

// Sweep runs the given algorithms over every failure combination of size k
// — the paper's 6 single-, 15 double-, and 20 triple-failure cases.
func Sweep(dep *Deployment, w *Workload, k int, algs []Algorithm) ([]*CaseResult, error) {
	return eval.Sweep(dep, w, k, algs)
}

// SweepWith is Sweep with tuning: Workers bounds how many failure cases run
// concurrently (0 = one per CPU), and Context supplies a shared
// ScenarioContext so consecutive sweeps skip the failure-independent
// precomputation. Results are identical to Sweep, in the same order.
func SweepWith(dep *Deployment, w *Workload, k int, algs []Algorithm, opts SweepOptions) ([]*CaseResult, error) {
	return eval.SweepOpts(dep, w, k, algs, opts)
}

// Simulate builds the behavioural network: hybrid-pipeline switches with
// converged OSPF legacy tables and the steady-state OpenFlow entries of the
// workload. Fail controllers with Network.FailControllers and apply any
// switch-mapping Result with Network.ApplyRecovery.
func Simulate(dep *Deployment, w *Workload) (*Network, error) {
	return sdnsim.New(dep, w)
}

// Further re-exports: topology loading, successive/cascading failures, and
// the traffic-variation layer.
type (
	// Graph is a bare topology (no control plane).
	Graph = topo.Graph
	// GraphMLOptions tunes Topology Zoo GraphML loading.
	GraphMLOptions = topo.LoadGraphMLOptions
	// SuccessiveStep is one stage of a successive-failure episode.
	SuccessiveStep = scenario.Step
	// ChurnReport quantifies reconfiguration between consecutive recoveries.
	ChurnReport = eval.ChurnReport
	// CascadeResult is a cascading-failure episode.
	CascadeResult = eval.CascadeResult
	// TrafficMatrix assigns demand rates to flows.
	TrafficMatrix = traffic.Matrix
	// LinkLoads is per-link carried traffic for a routed workload.
	LinkLoads = traffic.LoadMap
)

// LoadGraphML parses a Topology-Zoo-style GraphML document, so the pipeline
// can run on real zoo files when they are available.
func LoadGraphML(r io.Reader, opts GraphMLOptions) (*Graph, error) {
	return topo.LoadGraphML(r, opts)
}

// AutoDeployment derives a controller deployment for an arbitrary topology:
// the m highest-degree nodes become sites; switches join their nearest site.
func AutoDeployment(g *Graph, m, capacity int) (*Deployment, error) {
	return topo.AutoDeployment(g, m, capacity)
}

// NewSuccessive compiles an episode in which the given controllers fail one
// after another; step t covers the first t+1 failures.
func NewSuccessive(dep *Deployment, w *Workload, order []int) ([]*SuccessiveStep, error) {
	return scenario.BuildSuccessive(dep, w, order)
}

// Churn compares two consecutive recoveries of a successive episode.
func Churn(prevSc *Scenario, prev *Result, nextSc *Scenario, next *Result) ChurnReport {
	return eval.Churn(prevSc, prev.Solution, nextSc, next.Solution)
}

// Cascade simulates cascading controller failures: after each recovery, any
// active controller loaded beyond trigger×capacity fails and the recovery is
// recomputed, until the system stabilizes or collapses.
func Cascade(dep *Deployment, w *Workload, initial []int, alg Algorithm, trigger float64) (*CascadeResult, error) {
	return eval.Cascade(dep, w, initial, alg, trigger)
}

// UniformTraffic gives every flow the same demand rate.
func UniformTraffic(w *Workload, rate float64) (*TrafficMatrix, error) {
	return traffic.Uniform(w, rate)
}

// GravityTraffic builds a gravity-model demand matrix with the given mean.
func GravityTraffic(dep *Deployment, w *Workload, meanRate float64) (*TrafficMatrix, error) {
	return traffic.Gravity(dep.Graph, w, meanRate)
}

// LinkLoadMap routes the demand matrix over the workload's paths.
func LinkLoadMap(w *Workload, m *TrafficMatrix, linkCapacity float64) (*LinkLoads, error) {
	return traffic.Loads(w, m, linkCapacity)
}
